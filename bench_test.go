// Benchmarks regenerating every table and figure of the FlexLevel paper
// (one per experiment, per DESIGN.md §4), plus the ablation studies of
// DESIGN.md §5 and micro-benchmarks of the hot paths. The figure benches
// report their headline numbers as custom metrics (e.g. %reduction), so
// `go test -bench=.` both exercises and reproduces the evaluation.
package flexlevel_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"flexlevel/internal/baseline"
	"flexlevel/internal/bch"
	"flexlevel/internal/calib"
	"flexlevel/internal/core"
	"flexlevel/internal/exp"
	"flexlevel/internal/ftl"
	"flexlevel/internal/ldpc"
	"flexlevel/internal/noise"
	"flexlevel/internal/nunma"
	"flexlevel/internal/reducecode"
	"flexlevel/internal/runner"
	"flexlevel/internal/sensing"
	"flexlevel/internal/ssd"
	"flexlevel/internal/trace"
)

// benchSim keeps full-system benches to a few seconds per iteration.
func benchSim() exp.SimConfig {
	return exp.SimConfig{Requests: 8000, Seed: 1, PE: 6000}
}

// BenchmarkFig5C2CBER regenerates Fig. 5: interference BER of the
// baseline MLC cell vs the three NUNMA reduced-state configurations.
func BenchmarkFig5C2CBER(b *testing.B) {
	b.ReportAllocs()
	var rows []exp.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Fig5(benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 4 && rows[1].C2CBER > 0 {
		b.ReportMetric(rows[0].C2CBER/rows[1].C2CBER, "baseline/NUNMA1-x")
	}
}

// BenchmarkTable4RetentionBER regenerates Table 4: the retention BER
// grid over P/E cycles and storage time for all four schemes.
func BenchmarkTable4RetentionBER(b *testing.B) {
	b.ReportAllocs()
	var cells []exp.Table4Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = exp.Table4(benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	red := exp.Table4Reductions(cells)
	b.ReportMetric(red["NUNMA 1"], "NUNMA1-reduction-x")
	b.ReportMetric(red["NUNMA 2"], "NUNMA2-reduction-x")
	b.ReportMetric(red["NUNMA 3"], "NUNMA3-reduction-x")
}

// BenchmarkTable5SensingLevels regenerates Table 5: required extra LDPC
// soft sensing levels of the baseline MLC across the wear/retention grid.
func BenchmarkTable5SensingLevels(b *testing.B) {
	rule := sensing.DefaultRule()
	var rows []exp.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Table5(rule)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.Levels[4]), "levels@6000/1mo")
}

// BenchmarkFig6aResponseTime regenerates Fig. 6(a): the seven workloads
// under all four systems, reporting the paper's two headline reductions.
func BenchmarkFig6aResponseTime(b *testing.B) {
	b.ReportAllocs()
	var data *exp.Fig6aData
	for i := 0; i < b.N; i++ {
		var err error
		data, err = exp.Fig6a(benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*data.MeanReduction(core.FlexLevel, core.Baseline), "%red-vs-baseline")
	b.ReportMetric(100*data.MeanReduction(core.FlexLevel, core.LDPCInSSD), "%red-vs-ldpcinssd")
}

// BenchmarkFig6bPECycleSweep regenerates Fig. 6(b): the reduction vs
// LDPC-in-SSD as P/E grows from 4000 to 6000.
func BenchmarkFig6bPECycleSweep(b *testing.B) {
	var pts []exp.Fig6bPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = exp.Fig6b(benchSim(), []int{4000, 6000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*pts[0].Reduction, "%red@4000")
	b.ReportMetric(100*pts[len(pts)-1].Reduction, "%red@6000")
}

// BenchmarkFig7Endurance regenerates Fig. 7: write count, erase count
// and lifetime of FlexLevel vs LDPC-in-SSD at P/E 6000.
func BenchmarkFig7Endurance(b *testing.B) {
	var rows []exp.Fig7Row
	for i := 0; i < b.N; i++ {
		data, err := exp.Fig6a(benchSim())
		if err != nil {
			b.Fatal(err)
		}
		rows = exp.Fig7(data)
	}
	var wi, lt float64
	for _, r := range rows {
		wi += r.WriteIncrease
		lt += r.Lifetime
	}
	n := float64(len(rows))
	b.ReportMetric(100*wi/n, "%write-increase")
	b.ReportMetric(100*(1-lt/n), "%lifetime-loss")
}

// BenchmarkAblationEncoding compares ReduceCode vs naive Gray on 3
// levels (DESIGN.md §5).
func BenchmarkAblationEncoding(b *testing.B) {
	var rows []exp.AblationEncoding
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.EncodingAblation(benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[0].CapacityLoss, "%loss-reducecode")
	b.ReportMetric(100*rows[1].CapacityLoss, "%loss-gray3")
}

// BenchmarkAblationMargins compares NUNMA 3 vs uniform margins.
func BenchmarkAblationMargins(b *testing.B) {
	var rows []exp.AblationMargin
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.MarginAblation(benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	if rows[1].RetentionBER > 0 {
		b.ReportMetric(rows[0].RetentionBER/rows[1].RetentionBER, "uniform/NUNMA3-x")
	}
}

// BenchmarkAblationHLORule compares the paper's Lf x Lsensing HLO rule
// against frequency-only identification.
func BenchmarkAblationHLORule(b *testing.B) {
	var rows []exp.AblationHLO
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.HLOAblation(benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Migrations), "migrations-paper-rule")
	b.ReportMetric(float64(rows[1].Migrations), "migrations-freq-only")
}

// BenchmarkAblationRefTuning compares optimally retuned read references
// against LevelAdjust at the paper's worst corner.
func BenchmarkAblationRefTuning(b *testing.B) {
	var rows []exp.RefTuneRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.RefTuneAblation(benchSim(), 6000, 720)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[1].Levels), "levels-after-tuning")
	b.ReportMetric(float64(rows[2].Levels), "levels-leveladjust")
}

// BenchmarkAblationPoolSweep sweeps the ReducedCell pool capacity.
func BenchmarkAblationPoolSweep(b *testing.B) {
	var rows []exp.AblationPool
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.PoolSweep(benchSim(), []float64{0.001, 0.25})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Norm, "norm@0.1%pool")
	b.ReportMetric(rows[len(rows)-1].Norm, "norm@25%pool")
}

// ------------------------------------------------------ micro-benchmarks

// BenchmarkLDPCSoftDecode measures the min-sum decoder on the test-size
// rate-8/9 code with a realistic error load.
func BenchmarkLDPCSoftDecode(b *testing.B) {
	code, err := ldpc.New(ldpc.TestParams())
	if err != nil {
		b.Fatal(err)
	}
	d := ldpc.NewDecoder(code)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, code.K)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	cw, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	noisy := make([]byte, len(cw))
	copy(noisy, cw)
	for i := 0; i < 5; i++ {
		noisy[rng.Intn(code.N)] ^= 1
	}
	llr := ldpc.HardToLLR(noisy, ldpc.BSCLLR(0.004))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Decode(llr)
		if err != nil || !res.OK {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkLDPCHardDecode measures the bit-flipping decoder (the
// min-sum vs bit-flipping ablation's other arm).
func BenchmarkLDPCHardDecode(b *testing.B) {
	code, err := ldpc.New(ldpc.TestParams())
	if err != nil {
		b.Fatal(err)
	}
	h := ldpc.NewHardDecoder(code)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, code.K)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	cw, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	noisy := make([]byte, len(cw))
	copy(noisy, cw)
	noisy[rng.Intn(code.N)] ^= 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Decode(noisy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDPCQCDecode measures min-sum on the quasi-cyclic
// construction (the IRA-vs-QC structure ablation's other arm).
func BenchmarkLDPCQCDecode(b *testing.B) {
	code, err := ldpc.NewQC(ldpc.QCParams{J: 4, L: 36, Z: 37, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	d := ldpc.NewDecoder(code)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, code.K)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	cw, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	noisy := make([]byte, len(cw))
	copy(noisy, cw)
	for i := 0; i < 5; i++ {
		noisy[rng.Intn(code.N)] ^= 1
	}
	llr := ldpc.HardToLLR(noisy, ldpc.BSCLLR(0.004))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Decode(llr)
		if err != nil || !res.OK {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkBCHDecode measures the hard-decision BCH comparator at a
// flash-like operating point (255,191) t=8 with 4 errors.
func BenchmarkBCHDecode(b *testing.B) {
	code, err := bch.New(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, code.K)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	cw, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	noisy := make([]byte, len(cw))
	copy(noisy, cw)
	for _, p := range rng.Perm(code.N)[:4] {
		noisy[p] ^= 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := code.Decode(noisy)
		if err != nil || !res.OK {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkHardECCStudy regenerates the §1 motivation table (BCH vs
// soft LDPC tolerable BER at equal parity).
func BenchmarkHardECCStudy(b *testing.B) {
	var rows []exp.HardECCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.HardECCStudy(benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MaxBER*1e3, "bch-maxBER-x1e-3")
	b.ReportMetric(rows[2].MaxBER*1e3, "ldpc6-maxBER-x1e-3")
}

// BenchmarkLDPCEncode measures the linear-time accumulator encoder.
func BenchmarkLDPCEncode(b *testing.B) {
	code, err := ldpc.New(ldpc.TestParams())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, code.K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReduceCodePack measures the 3-bit pair packing of a 4KB page.
func BenchmarkReduceCodePack(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	nbits := reducecode.PadBits(len(data) * 8)
	padded := make([]byte, (nbits+7)/8)
	copy(padded, data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reducecode.PackBits(padded, nbits); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBERModelTotal measures one closed-form BER evaluation.
func BenchmarkBERModelTotal(b *testing.B) {
	m, err := noise.NewBERModel(nunma.BaselineMLC(), noise.MLCGray())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.TotalBER(5000, 168)
	}
}

// BenchmarkNoiseRetentionBER measures the uncached retention component
// alone — the Erfc loop the BER surface memoizes away on the read path.
func BenchmarkNoiseRetentionBER(b *testing.B) {
	m, err := noise.NewBERModel(nunma.BaselineMLC(), noise.MLCGray())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.RetentionBER(5000, 168)
	}
}

// BenchmarkRequiredLevels measures the UBER rule (Eq. 1 bisection).
func BenchmarkRequiredLevels(b *testing.B) {
	rule := sensing.DefaultRule()
	for i := 0; i < b.N; i++ {
		if _, ok := rule.RequiredLevels(6e-3); !ok {
			b.Fatal("unexpected failure")
		}
	}
}

// BenchmarkFTLWrite measures the mapping layer under GC pressure.
func BenchmarkFTLWrite(b *testing.B) {
	cfg := ftl.Config{
		LogicalPages:  4096,
		PagesPerBlock: 64,
		Blocks:        88,
		ReducedFactor: 0.75,
		GCThreshold:   3,
		GCTarget:      4,
	}
	f, err := ftl.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Write(uint64(rng.Intn(4096)), ftl.NormalState); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDevice builds the small read-bench device around berOf.
func benchDevice(b *testing.B, berOf ssd.BERFunc) *ssd.Device {
	b.Helper()
	cfg := ssd.DefaultConfig()
	cfg.FTL = ftl.Config{
		LogicalPages:  4096,
		PagesPerBlock: 64,
		Blocks:        88,
		ReducedFactor: 0.75,
		GCThreshold:   3,
		GCTarget:      4,
	}
	d, err := ssd.New(cfg, berOf, baseline.NewLDPCInSSD())
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Preload(4096); err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkSSDRead measures one simulated read end to end with a warm
// level cache (the steady-state path).
func BenchmarkSSDRead(b *testing.B) {
	d := benchDevice(b, func(state ftl.BlockState, pe int, ageHours float64) float64 { return 5e-3 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(time.Duration(i)*time.Millisecond, uint64(i%4096))
	}
}

// BenchmarkSSDReadCold forces a level-cache miss on every read: each
// call sees a BER that quantizes to a fresh berKey (steps of 1e-4 in
// log space, 10x the 1e-5 quantum), so the full UBER bisection runs
// every time. The warm/cold pair brackets what the caches buy.
func BenchmarkSSDReadCold(b *testing.B) {
	calls := 0
	d := benchDevice(b, func(state ftl.BlockState, pe int, ageHours float64) float64 {
		calls++
		return 5e-3 * math.Exp(float64(calls)*1e-4)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(time.Duration(i)*time.Millisecond, uint64(i%4096))
	}
}

// BenchmarkAdaptiveRead measures one simulated read end to end on a
// calibrated adaptive device (Config.Calib enabled, every block's
// threshold shift already converged by a warm-up pass): the steady-state
// ladder path — per-block shift lookup, shifted-BER evaluation, warm
// level cache — with no recalibration traffic.
func BenchmarkAdaptiveRead(b *testing.B) {
	cfg := ssd.DefaultConfig()
	cfg.FTL = ftl.Config{
		LogicalPages:  4096,
		PagesPerBlock: 64,
		Blocks:        88,
		ReducedFactor: 0.75,
		GCThreshold:   3,
		GCTarget:      4,
	}
	cfg.Calib = calib.DefaultConfig()
	// Drifted landscape: pages past 100h are unreadable at nominal
	// references and decode cleanly within 50mV of a -120mV shift, so
	// the warm-up pass calibrates every block once and then holds.
	shifted := func(state ftl.BlockState, pe int, ageHours float64, shiftMv int) float64 {
		if ageHours <= 100 {
			return 1e-4
		}
		d := shiftMv + 120
		if d < 0 {
			d = -d
		}
		if d <= 50 {
			return 1e-4
		}
		return 0.1
	}
	berOf := func(state ftl.BlockState, pe int, ageHours float64) float64 {
		return shifted(state, pe, ageHours, 0)
	}
	d, err := ssd.New(cfg, berOf, baseline.NewAdaptiveRetry(0))
	if err != nil {
		b.Fatal(err)
	}
	d.SetShiftedBER(shifted)
	if err := d.Preload(4096); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		d.Read(time.Duration(i)*time.Millisecond, uint64(i))
	}
	warm := d.Results().Recalibrations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(time.Duration(i)*time.Millisecond, uint64(i%4096))
	}
	b.StopTimer()
	b.ReportMetric(float64(d.Results().Recalibrations-warm), "recals-steady")
}

// BenchmarkJournalFrameEncode measures flushing one full journal frame
// (DefaultFlushRecords mapping records) into a reused log buffer — the
// write-path metadata cost per flush.
func BenchmarkJournalFrameEncode(b *testing.B) {
	recs := make([]ftl.Record, ftl.DefaultFlushRecords)
	for i := range recs {
		recs[i] = ftl.Record{Type: 1, Seq: uint64(i), LPN: uint64(i), PPN: int64(i * 3), State: ftl.NormalState}
	}
	buf := ftl.AppendFrame(nil, recs) // size the buffer once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ftl.AppendFrame(buf[:0], recs)
	}
}

// BenchmarkTraceGenerate measures the synthetic workload generator.
func BenchmarkTraceGenerate(b *testing.B) {
	w, err := trace.ByName("fin-2", 10000, 65536, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// replayBench replays a Fig. 6(a)-style fin-2 trace under FlexLevel on
// an 8-channel device, through either the legacy serial path (qd 1) or
// the batched event-driven path (qd > 1). The pair gates the scheduler
// tentpole: the batched path's level-table fast path and in-flight
// window must beat the serial path by a wide margin at equal work.
func replayBench(b *testing.B, qd int) {
	b.Helper()
	opts := core.DefaultOptions(core.FlexLevel, 6000)
	opts.SSD.Channels = 8
	w, err := trace.ByName("fin-2", 8000, opts.SSD.FTL.LogicalPages, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := w.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		r, err := core.NewRunner(opts)
		if err != nil {
			b.Fatal(err)
		}
		if qd <= 1 {
			m, err = r.RunRequests(w.Name, reqs, w.WorkingSet)
		} else {
			m, err = r.RunRequestsQD(w.Name, reqs, w.WorkingSet, qd)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.AvgResponse*1e6, "avg-resp-µs")
}

// BenchmarkReplaySerialQD1 is the pre-scheduler replay path: one
// request in flight, Step per request, LevelRule bisection on level
// cache misses.
func BenchmarkReplaySerialQD1(b *testing.B) { replayBench(b, 1) }

// BenchmarkReplayBatchedQD8 is the scheduler path: StepBatch keeps 8
// requests in flight over the completion heap and the device resolves
// sensing levels through the precomputed level table.
func BenchmarkReplayBatchedQD8(b *testing.B) { replayBench(b, 8) }

// scenarioBenchSpec is the default three-tenant mix at bench size.
func scenarioBenchSpec(b *testing.B) trace.InterleaveSpec {
	b.Helper()
	logical := core.DefaultOptions(core.Baseline, 6000).SSD.FTL.LogicalPages
	return trace.InterleaveSpec{
		Tenants:     exp.ScenarioTenants(logical),
		Requests:    8000,
		Interarrive: exp.ScenarioInterarrive,
		Seed:        1,
	}
}

// BenchmarkScenarioInterleave measures generating and merging the
// three-tenant scenario stream — the per-cell trace cost every point
// of the scenario matrix pays before replay.
func BenchmarkScenarioInterleave(b *testing.B) {
	spec := scenarioBenchSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	var reqs []trace.Request
	for i := 0; i < b.N; i++ {
		var err error
		reqs, err = trace.Interleave(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests")
}

// BenchmarkScenarioReplayQD8 measures one scenario cell end to end:
// the interleaved multi-tenant stream through the batched engine at
// queue depth 8 with per-tenant attribution enabled.
func BenchmarkScenarioReplayQD8(b *testing.B) {
	spec := scenarioBenchSpec(b)
	reqs, err := trace.Interleave(spec)
	if err != nil {
		b.Fatal(err)
	}
	var workingSet uint64
	for _, t := range spec.Tenants {
		if end := t.Base + t.WorkingSet; end > workingSet {
			workingSet = end
		}
	}
	opts := core.DefaultOptions(core.FlexLevel, 6000)
	opts.SSD.Channels = exp.ScenarioChannels
	b.ReportAllocs()
	b.ResetTimer()
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		r, err := core.NewRunner(opts)
		if err != nil {
			b.Fatal(err)
		}
		r.TrackTenants(trace.TenantNames(spec.Tenants))
		m, err = r.RunRequestsQD("scenario", reqs, workingSet, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(m.Tenants) > 0 {
		b.ReportMetric(m.Tenants[0].P99Read*1e6, "oltp-p99-µs")
	}
}

// BenchmarkReliabilityParallel runs the fault-injection sweep through
// the experiment engine with all cores and reports the engine's own
// speedup metric (summed shard time over wall time), so the CI
// benchmark artifact tracks parallel efficiency across commits.
func BenchmarkReliabilityParallel(b *testing.B) {
	var speedup, opsPerSec float64
	for i := 0; i < b.N; i++ {
		cfg := benchSim()
		cfg.Parallel = 0 // all cores
		cfg.OnSummary = func(s *runner.Summary) { speedup, opsPerSec = s.Speedup, s.OpsPerSec }
		if _, err := exp.Reliability(cfg, []float64{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(speedup, "x-speedup")
	b.ReportMetric(opsPerSec, "sim-ops/s")
}
