// ssdreplay: replay one synthetic workload under all four storage
// systems and print the Fig. 6(a)-style comparison, plus the sensing-
// level histogram that explains where the time goes.
//
//	go run ./examples/ssdreplay -w web-1 -n 40000 -pe 6000
package main

import (
	"flag"
	"fmt"
	"log"

	"flexlevel/internal/core"
	"flexlevel/internal/trace"
)

func main() {
	name := flag.String("w", "web-1", "workload (fin-2, web-1, web-2, prj-1, prj-2, win-1, win-2)")
	n := flag.Int("n", 40000, "requests")
	pe := flag.Int("pe", 6000, "P/E cycle point")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()

	opts := core.DefaultOptions(core.Baseline, *pe)
	w, err := trace.ByName(*name, *n, opts.SSD.FTL.LogicalPages, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s (%s): %d requests, %.0f%% reads, working set %d pages, P/E %d\n\n",
		w.Name, w.Class, w.Requests, 100*w.ReadRatio, w.WorkingSet, *pe)

	var metrics []core.Metrics
	var ref float64
	for _, sys := range core.Systems() {
		r, err := core.NewRunner(core.DefaultOptions(sys, *pe))
		if err != nil {
			log.Fatal(err)
		}
		m, err := r.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		if sys == core.LDPCInSSD {
			ref = m.AvgResponse
		}
		metrics = append(metrics, m)
	}
	for _, m := range metrics {
		norm := "     -"
		if ref > 0 {
			norm = fmt.Sprintf("%6.2f", m.AvgResponse/ref)
		}
		fmt.Printf("%-22s avg %9.1fµs (norm %s)  reads %9.1fµs  writes %9.1fµs\n",
			m.System, m.AvgResponse*1e6, norm, m.AvgRead*1e6, m.AvgWrite*1e6)
		fmt.Printf("%22s programs %d, erases %d, WA %.2f, migrations %d, capacity loss %.1f%%\n",
			"", m.TotalPrograms, m.Erases, m.WriteAmp, m.Migrations, 100*m.CapacityLoss)
		fmt.Printf("%22s sensing levels per read: %v\n\n", "", m.LevelHist)
	}
	fmt.Println("norm column is relative to ldpc-in-ssd (the paper's Fig. 6(a) normalization).")
}
