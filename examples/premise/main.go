// premise: the paper's core claim demonstrated mechanically, cell by
// cell. A 4KB-class page is LDPC-encoded, programmed into the cell-
// accurate NAND array, worn to P/E 6000 and aged one month, then read
// back through quantized soft sensing:
//
//   - the normal-state (4-level) page fails hard-decision decoding and
//     needs escalating soft sensing levels (each one a full re-read);
//
//   - the NUNMA 3 reduced-state (3-level) page decodes at hard decision.
//
//     go run ./examples/premise
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"flexlevel/internal/device"
	"flexlevel/internal/ldpc"
	"flexlevel/internal/nand"
	"flexlevel/internal/nunma"
	"flexlevel/internal/sensing"
)

const (
	cols  = 2048
	pe    = 6000
	hours = 720
)

func main() {
	fmt.Printf("stress point: P/E %d, %d hours retention (the paper's worst corner)\n\n", pe, hours)
	runState(nand.Normal, "normal 4-level MLC")
	fmt.Println()
	runState(nand.Reduced, "NUNMA 3 reduced state")
}

func runState(state nand.CellState, label string) {
	cfg, err := nunma.ByName("NUNMA 3")
	if err != nil {
		log.Fatal(err)
	}
	a, err := nand.NewArray(1, cols, nunma.BaselineMLC(), cfg.Spec(), 77)
	if err != nil {
		log.Fatal(err)
	}
	a.SetPECycles(pe)
	if state == nand.Reduced {
		if err := a.SetRowState(0, nand.Reduced); err != nil {
			log.Fatal(err)
		}
	}
	n := device.WordlineBits(cols, state)
	m := n / 9
	code, err := ldpc.New(ldpc.Params{InfoBits: n - m, ParityBits: m, ColWeight: 4, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	pc, err := device.NewPageCodec(a, code, state)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	data := make([]byte, code.K)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	if err := pc.WritePage(0, data); err != nil {
		log.Fatal(err)
	}
	a.Age(hours)

	fmt.Printf("%s (%d cells, %d info bits):\n", label, cols, code.K)
	timing := sensing.DefaultTiming()
	for levels := 0; levels <= 6; levels++ {
		res, err := pc.ReadPage(0, levels)
		if err != nil {
			log.Fatal(err)
		}
		ok := res.OK && bytes.Equal(res.Data, data)
		status := "FAIL"
		if ok {
			status = "ok  "
		}
		fmt.Printf("  %d extra sensing levels (read %6v): %s  (%d BP iterations)\n",
			levels, timing.ReadLatency(levels), status, res.Iterations)
		if ok {
			if levels == 0 {
				fmt.Println("  -> decodes at hard decision: no soft-sensing cost")
			} else {
				fmt.Printf("  -> needs soft sensing: every read pays %v instead of %v\n",
					timing.ReadLatency(levels), timing.ReadLatency(0))
			}
			return
		}
	}
	fmt.Println("  -> unreadable even at maximum sensing: page must be refreshed")
}
