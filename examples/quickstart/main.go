// Quickstart: the FlexLevel pipeline in one page.
//
// It walks the paper's core argument end to end using the public API:
// raw BER at heavy wear makes soft LDPC reads slow; LevelAdjust (NUNMA 3)
// pulls the BER back below the soft-sensing trigger; AccessEval applies
// it only where it pays, giving most of the speedup for a fraction of
// the capacity loss.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flexlevel"
)

func main() {
	const (
		pe    = 6000 // heavily worn flash
		hours = 720  // data stored for a month
	)

	// 1. Device physics: how bad is a regular MLC cell at this point?
	c2c, ret, err := flexlevel.DeviceBER("baseline", pe, hours)
	if err != nil {
		log.Fatal(err)
	}
	raw := c2c + ret
	levels, ok := flexlevel.RequiredSensingLevels(raw)
	fmt.Printf("baseline MLC @ P/E %d, %dh:  raw BER %.2e -> %d extra sensing levels (read %v)\n",
		pe, hours, raw, levels, flexlevel.ReadLatency(levels))
	if !ok {
		fmt.Println("  (beyond the device limit: such pages must be refreshed)")
	}

	// 2. LevelAdjust with NUNMA 3: same wear, reduced Vth levels.
	c2c, ret, err = flexlevel.DeviceBER("NUNMA 3", pe, hours)
	if err != nil {
		log.Fatal(err)
	}
	raw = c2c + ret
	levels, _ = flexlevel.RequiredSensingLevels(raw)
	fmt.Printf("NUNMA 3 reduced state:      raw BER %.2e -> %d extra sensing levels (read %v)\n",
		raw, levels, flexlevel.ReadLatency(levels))
	fmt.Printf("  cost: %.0f%% storage density vs normal MLC\n\n", 100*flexlevel.ReducedCapacityFactor)

	// 3. ReduceCode: 3 bits per pair of 3-level cells (Table 1).
	fmt.Println("ReduceCode mapping (3-bit value -> Vth I, Vth II):")
	for v := uint8(0); v < 8; v++ {
		i, ii := flexlevel.EncodePair(v)
		fmt.Printf("  %03b -> (%d,%d)", v, i, ii)
		if v%4 == 3 {
			fmt.Println()
		}
	}
	fmt.Println()

	// 4. Full system: replay an OLTP workload under LDPC-in-SSD and
	// FlexLevel at the same wear point.
	const workload, requests = "fin-2", 20000
	ldpc, err := flexlevel.Run(flexlevel.LDPCInSSD, pe, workload, requests)
	if err != nil {
		log.Fatal(err)
	}
	flex, err := flexlevel.Run(flexlevel.FlexLevel, pe, workload, requests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s @ P/E %d, %d requests:\n", workload, pe, requests)
	fmt.Printf("  LDPC-in-SSD:  avg response %8.1fµs\n", ldpc.AvgResponse*1e6)
	fmt.Printf("  FlexLevel:    avg response %8.1fµs  (%.0f%% faster, %.1f%% capacity loss, %d migrations)\n",
		flex.AvgResponse*1e6,
		100*(1-flex.AvgResponse/ldpc.AvgResponse),
		100*flex.CapacityLoss, flex.Migrations)
}
