// berstudy: device-level reliability study.
//
// It cross-validates the closed-form BER models against the cell-
// accurate Monte-Carlo NAND array simulator: program a wordline, apply
// interference and retention aging, read it back, and compare the
// measured error rates with the analytic predictions that drive the
// paper's Tables 4-5.
//
//	go run ./examples/berstudy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"flexlevel/internal/nand"
	"flexlevel/internal/noise"
	"flexlevel/internal/nunma"
	"flexlevel/internal/reducecode"
)

const (
	rows  = 16
	cols  = 512
	pe    = 6000
	hours = 720.0
)

func main() {
	cfg, err := nunma.ByName("NUNMA 3")
	if err != nil {
		log.Fatal(err)
	}

	// Analytic predictions.
	baseModel, err := noise.NewBERModel(nunma.BaselineMLC(), noise.MLCGray())
	if err != nil {
		log.Fatal(err)
	}
	redModel, err := noise.NewBERModel(cfg.Spec(), reducecode.Encoding())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic @ P/E %d, %.0fh:\n", pe, hours)
	fmt.Printf("  baseline MLC: C2C %.3e, retention %.3e\n", baseModel.C2CBER(), baseModel.RetentionBER(pe, hours))
	fmt.Printf("  NUNMA 3:      C2C %.3e, retention %.3e\n\n", redModel.C2CBER(), redModel.RetentionBER(pe, hours))

	// Monte Carlo through the closed-form sampler.
	rng := rand.New(rand.NewSource(7))
	mc := baseModel.MonteCarloBER(300000, pe, hours, rng)
	fmt.Printf("monte carlo (sampler, %d cells): baseline total BER %.3e (%d level errors, %d multi-level, %d pass failures)\n\n",
		mc.Cells, mc.BER, mc.LevelErrors, mc.MultiLevel, mc.PassFail)

	// Cell-accurate array: program, age, read back.
	fmt.Printf("cell-accurate array (%dx%d cells):\n", rows, cols)
	normalErrs, normalCells := runArray(cfg, false)
	reducedErrs, reducedCells := runArray(cfg, true)
	fmt.Printf("  normal rows:  %d/%d misread after %0.fh at P/E %d\n", normalErrs, normalCells, hours, pe)
	fmt.Printf("  reduced rows: %d/%d misread (LevelAdjust robustness)\n", reducedErrs, reducedCells)
	if reducedErrs*normalCells <= normalErrs*reducedCells {
		fmt.Println("  -> reduced state at least as robust, as the paper claims")
	} else {
		fmt.Println("  -> WARNING: reduced state worse; model calibration drifted")
	}
}

// runArray programs every wordline, ages the array, reads back, and
// counts symbol errors.
func runArray(cfg nunma.Config, reduced bool) (errors, symbols int) {
	a, err := nand.NewArray(rows, cols, nunma.BaselineMLC(), cfg.Spec(), 42)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	a.SetPECycles(pe)
	stored := make([][]uint8, rows)
	for r := 0; r < rows; r++ {
		if reduced {
			if err := a.SetRowState(r, nand.Reduced); err != nil {
				log.Fatal(err)
			}
			vals := make([]uint8, cols/2)
			for i := range vals {
				vals[i] = uint8(rng.Intn(8))
			}
			stored[r] = vals
			if err := a.ProgramRowReduced(r, vals); err != nil {
				log.Fatal(err)
			}
		} else {
			levels := make([]uint8, cols)
			for i := range levels {
				levels[i] = uint8(rng.Intn(4))
			}
			stored[r] = levels
			if err := a.ProgramRowNormal(r, levels); err != nil {
				log.Fatal(err)
			}
		}
	}
	a.Age(hours)
	for r := 0; r < rows; r++ {
		var got []uint8
		var err error
		if reduced {
			got, err = a.ReadRowReduced(r)
		} else {
			got, err = a.ReadRowLevels(r)
		}
		if err != nil {
			log.Fatal(err)
		}
		for i := range stored[r] {
			symbols++
			if got[i] != stored[r][i] {
				errors++
			}
		}
	}
	return errors, symbols
}
