// endurance: the Fig. 7 study — what LevelAdjust+AccessEval costs in
// writes, erases and lifetime, and how the ReducedCell pool size trades
// capacity loss against read speedup.
//
//	go run ./examples/endurance -n 30000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flexlevel/internal/exp"
)

func main() {
	n := flag.Int("n", 30000, "requests per workload")
	pe := flag.Int("pe", 6000, "P/E cycle point (paper runs Fig. 7 at 6000)")
	flag.Parse()

	cfg := exp.SimConfig{Requests: *n, Seed: 1, PE: *pe}

	fmt.Println("running the seven workloads under LDPC-in-SSD and FlexLevel...")
	data, err := exp.Fig6a(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rows := exp.Fig7(data)
	exp.PrintFig7(os.Stdout, rows)

	fmt.Println()
	fmt.Printf("lifetime model: extra write amplification only applies above P/E %d\n", exp.EnduranceActivatePE)
	fmt.Printf("(Table 5: no extra sensing levels below that point), endurance %d cycles.\n", exp.EnduranceLimit)

	fmt.Println()
	fmt.Println("ReducedCell pool sweep (web-1): speedup vs capacity loss")
	sweep, err := exp.PoolSweep(cfg, []float64{0.001, 0.005, 0.02, 0.25})
	if err != nil {
		log.Fatal(err)
	}
	exp.PrintPoolSweep(os.Stdout, sweep)
}
