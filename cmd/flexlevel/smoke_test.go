package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// checkGzip asserts path exists, is non-empty, and starts with the gzip
// magic — the container format of pprof CPU and heap profiles.
func checkGzip(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile %s: %v", path, err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("profile %s: not a gzip stream (pprof format), got % x", path, data[:min(len(data), 4)])
	}
	return data
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestProfilerOutputs drives the profiler helpers directly: start, do a
// little work, stop, and check all three artifacts are structurally
// valid.
func TestProfilerOutputs(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	trc := filepath.Join(dir, "trace.out")
	prof, err := startProfiles(cpu, mem, trc)
	if err != nil {
		t.Fatal(err)
	}
	// Some allocation and CPU work so the profiles have content.
	var sink []byte
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 1024)...)
	}
	_ = sink
	prof.stop()
	prof.stop() // idempotent

	checkGzip(t, cpu)
	checkGzip(t, mem)
	data, err := os.ReadFile(trc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("go 1.")) {
		t.Fatalf("trace: missing runtime trace header, got % x", data[:min(len(data), 8)])
	}
}

// TestProfilingFlagsSmoke is the end-to-end smoke: build the real
// binary, run a fast subcommand under all three profiling flags, and
// verify go tool pprof itself opens the CPU profile.
func TestProfilingFlagsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "flexlevel")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	trc := filepath.Join(dir, "trace.out")
	cmd := exec.Command(bin, "fig5", "-cpuprofile", cpu, "-memprofile", mem, "-trace", trc)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("flexlevel fig5: %v\n%s", err, out)
	}
	checkGzip(t, cpu)
	checkGzip(t, mem)
	data, err := os.ReadFile(trc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("go 1.")) {
		t.Fatalf("trace: missing runtime trace header")
	}

	pprofCmd := exec.Command("go", "tool", "pprof", "-raw", cpu)
	if out, err := pprofCmd.CombinedOutput(); err != nil {
		t.Fatalf("go tool pprof -raw: %v\n%s", err, out)
	}
}
