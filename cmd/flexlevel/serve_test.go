package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flexlevel/internal/core"
	"flexlevel/internal/ftl"
	"flexlevel/internal/server"
	"flexlevel/internal/trace"
)

// TestParseServeFlags: the serve flag surface maps onto server.Config.
func TestParseServeFlags(t *testing.T) {
	o, err := parseServe([]string{
		"-addr", "127.0.0.1:0", "-system", "baseline", "-pe", "4000",
		"-seed", "9", "-qd", "3", "-maxqueue", "10", "-rate", "2500",
		"-slo", "2ms", "-deadline", "5ms", "-simgap", "10us",
		"-faults", "2", "-crash-at", "77", "-auto-restart",
		"-snapshot", "/tmp/x.json", "-drain-timeout", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	c := o.cfg
	if c.System != core.Baseline || c.PE != 4000 || c.Seed != 9 ||
		c.QueueDepth != 3 || c.MaxQueue != 10 || c.Rate != 2500 ||
		c.SLOWait != 2*time.Millisecond || c.Deadline != 5*time.Millisecond ||
		c.SimGap != 10*time.Microsecond || c.CrashAtOp != 77 || !c.AutoRestart ||
		c.SnapshotPath != "/tmp/x.json" {
		t.Fatalf("flags lost in parse: %+v", c)
	}
	if c.Faults.Read.Base == 0 && c.Faults.Read.Amp == 0 {
		t.Fatal("-faults 2 left the fault curves empty")
	}
	if o.addr != "127.0.0.1:0" || o.drainTimeout != 5*time.Second {
		t.Fatalf("addr/drain lost: %+v", o)
	}
	if _, err := parseServe([]string{"-system", "nope"}); err == nil {
		t.Fatal("unknown system accepted")
	}
	o, err = parseServe([]string{"-shards", "4", "-crash-shard", "2", "-pprof"})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.Shards != 4 || o.cfg.CrashShard != 2 || !o.pprof {
		t.Fatalf("shard/pprof flags lost in parse: %+v", o)
	}
}

// TestParseLoadSplitsBudget: -n splits across the default tenant mix by
// weight, exactly (remainder to the last tenant).
func TestParseLoadSplitsBudget(t *testing.T) {
	o, err := parseLoad([]string{"-n", "1000", "-workers", "2", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}
	specs := trace.DefaultTenants(core.DefaultOptions(core.FlexLevel, 6000).SSD.FTL.LogicalPages)
	if len(o.cfg.Tenants) != len(specs) {
		t.Fatalf("%d load tenants for %d specs", len(o.cfg.Tenants), len(specs))
	}
	var total, weight int
	for _, s := range specs {
		weight += s.Weight
	}
	for i, lt := range o.cfg.Tenants {
		if lt.Name != specs[i].Name || lt.Window != specs[i].WorkingSet {
			t.Fatalf("tenant %d: %+v does not match spec %+v", i, lt, specs[i])
		}
		total += lt.Requests
		if i < len(specs)-1 && lt.Requests != 1000*specs[i].Weight/weight {
			t.Fatalf("tenant %s budget %d, want weighted share", lt.Name, lt.Requests)
		}
	}
	if total != 1000 {
		t.Fatalf("budgets sum to %d, want exactly 1000", total)
	}
}

// TestGateLoad: each budget violation trips the gate; a clean run passes.
func TestGateLoad(t *testing.T) {
	clean := server.LoadResult{
		Sent: 100, OK: 100, Shed: 10,
		MaxSeq:    map[string]uint64{"a": 30},
		WriteAcks: map[string]int64{"a": 30},
	}
	if err := gateLoad(clean, 0.5); err != nil {
		t.Fatalf("clean run tripped the gate: %v", err)
	}
	for name, mutate := range map[string]func(*server.LoadResult){
		"5xx":       func(r *server.LoadResult) { r.Status5xx = 1 },
		"bad":       func(r *server.LoadResult) { r.BadStatus = 1 },
		"failed":    func(r *server.LoadResult) { r.Failed = 1 },
		"dup-seq":   func(r *server.LoadResult) { r.SeqDuplicates = 1 },
		"non-dense": func(r *server.LoadResult) { r.MaxSeq["a"] = 31 },
		"shed-rate": func(r *server.LoadResult) { r.Shed = 60 },
	} {
		r := clean
		r.MaxSeq = map[string]uint64{"a": 30}
		mutate(&r)
		if err := gateLoad(r, 0.5); err == nil {
			t.Fatalf("%s violation passed the gate", name)
		}
	}
}

// TestServePprofSmoke: -pprof mounts the profiling endpoints, and a
// 1-second CPU profile can be fetched while the server is under load —
// the workflow an operator uses to see where serve time goes. Without
// the flag the endpoints must not exist.
func TestServePprofSmoke(t *testing.T) {
	small := &ftl.Config{
		LogicalPages: 2048, PagesPerBlock: 16, Blocks: 176,
		ReducedFactor: 0.75, GCThreshold: 3, GCTarget: 4,
	}
	tenants := trace.DefaultTenants(2048)
	boot := func(pprof bool) (string, context.CancelFunc, chan error) {
		o := serveOpts{
			addr: "127.0.0.1:0",
			cfg: server.Config{
				System: core.FlexLevel, PE: 5000, Seed: 7,
				FTL: small, Tenants: tenants, Shards: 2,
			},
			drainTimeout: 20 * time.Second,
			pprof:        pprof,
		}
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- runServe(ctx, o, ready) }()
		select {
		case addr := <-ready:
			return addr, cancel, done
		case err := <-done:
			t.Fatalf("serve exited before ready: %v", err)
			return "", cancel, done
		}
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain failed: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("serve did not drain")
		}
	}

	addr, cancel, done := boot(true)
	// Keep the server busy while the profile samples.
	loadDone := make(chan error, 1)
	go func() {
		_, err := server.Load(server.LoadConfig{
			BaseURL: "http://" + addr,
			Tenants: []server.LoadTenant{
				{Name: tenants[0].Name, Requests: 20000, Window: tenants[0].WorkingSet},
			},
			Workers: 4, ReadRatio: 0.8, Seed: 3,
		})
		loadDone <- err
	}()
	resp, err := http.Get("http://" + addr + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("profile fetch: status %d, err %v", resp.StatusCode, err)
	}
	if len(prof) == 0 {
		t.Fatal("CPU profile is empty")
	}
	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}
	stop(cancel, done)

	addr, cancel, done = boot(false)
	resp, err = http.Get("http://" + addr + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("pprof endpoints reachable without -pprof")
	}
	stop(cancel, done)
}

// TestServeLoadRoundTrip is the end-to-end smoke: boot the serve path
// in process on a small device, drive it with the load client through
// the same tenant spec file both sides would share in production, gate
// the result, then cancel (the SIGTERM path) and check the drain wrote
// the final snapshot.
func TestServeLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "final.json")
	tenants := trace.DefaultTenants(2048)
	specPath := filepath.Join(dir, "tenants.csv")
	f, err := os.Create(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteScenarioSpec(f, tenants); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o := serveOpts{
		addr: "127.0.0.1:0",
		cfg: server.Config{
			System: core.FlexLevel, PE: 5000, Seed: 7,
			FTL: &ftl.Config{
				LogicalPages: 2048, PagesPerBlock: 16, Blocks: 176,
				ReducedFactor: 0.75, GCThreshold: 3, GCTarget: 4,
			},
			Tenants:      tenants,
			SnapshotPath: snapPath,
		},
		drainTimeout: 20 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- runServe(ctx, o, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	}

	lo, err := parseLoad([]string{
		"-url", "http://" + addr, "-tenants", specPath,
		"-n", "400", "-workers", "4", "-seed", "11", "-gate",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := server.Load(lo.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 {
		t.Fatal("load completed nothing")
	}
	if err := gateLoad(res, lo.maxShedRate); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain")
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	var snap server.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("final snapshot unparsable: %v", err)
	}
	if !snap.Draining || snap.Admitted != res.OK {
		t.Fatalf("snapshot admitted=%d draining=%v, client completed %d",
			snap.Admitted, snap.Draining, res.OK)
	}
}
