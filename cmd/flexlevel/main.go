// Command flexlevel runs the FlexLevel paper experiments. Each
// subcommand regenerates one table or figure of the DAC'15 evaluation:
//
//	flexlevel fig5               C2C BER of reduced state cells
//	flexlevel table4             retention BER grid
//	flexlevel table5             required extra LDPC sensing levels
//	flexlevel fig6a [-n N]       normalized response time, 7 workloads x 4 systems
//	flexlevel fig6b [-n N]       response-time reduction vs P/E sweep
//	flexlevel fig7  [-n N]       endurance: writes, erases, lifetime
//	flexlevel ablations [-n N]   design-choice ablation studies
//	flexlevel ecc                hard-decision BCH vs soft LDPC capability
//	flexlevel retshare           retention-error share by Vth level (§4.2)
//	flexlevel replay -in f       replay a CSV or MSR trace file
//	flexlevel reliability [-faults m]  fault-injection sweep: bad blocks, degradation
//	flexlevel crash [-crashes k] power-loss sweep: journal replay, recovery audit
//	flexlevel throughput [-n N]  IOPS and read-latency percentiles vs queue depth 1..32
//	flexlevel adaptive [-n N]    adaptive threshold calibration vs static references
//	flexlevel scenario [-n N] [-tenants f]  workload-shape x fault x queue-depth x system matrix
//	flexlevel lifetime [-scale f]  full-device end-of-life: scrub/refresh policies, TBW to read-only
//	flexlevel all   [-n N]       everything above in order
//
// Beyond the one-shot experiments, serve runs the simulated SSD as a
// long-running multi-tenant block service and load drives it:
//
//	flexlevel serve [-addr :8077] [-tenants f] [-qd 8] [-slo d] ...
//	flexlevel load  [-url u] [-n 100000] [-gate] [-json] ...
//
// serve drains cleanly on SIGTERM (stop admitting, finish in-flight,
// flush the final metrics snapshot); see cmd/flexlevel/serve.go.
//
// SIGINT cancels a running sweep cleanly: shards not yet started stay
// unrun and the partial engine summary is still written (with -csv).
//
// Profiling: -cpuprofile, -memprofile and -trace write a CPU profile, a
// heap profile and a runtime execution trace for any subcommand
// (inspect with go tool pprof / go tool trace).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"flexlevel/internal/core"
	"flexlevel/internal/exp"
	"flexlevel/internal/runner"
	"flexlevel/internal/sensing"
	"flexlevel/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flexlevel <fig5|table4|table5|fig6a|fig6b|fig7|ablations|ecc|retshare|replay|reliability|crash|throughput|adaptive|scenario|lifetime|all> [-n requests] [-seed s] [-pe cycles] [-parallel w] [-faults m] [-crashes k] [-scale f] [-in file -format csv|msr] [-tenants file] [-cpuprofile f] [-memprofile f] [-trace f]")
	fmt.Fprintln(os.Stderr, "       flexlevel serve [-addr a] [-shards n] [-tenants f] [-qd d] [-rate r] [-slo d] [-deadline d] [-faults m] [-crash-at n] [-crash-shard k] [-auto-restart] [-snapshot f] [-pprof]")
	fmt.Fprintln(os.Stderr, "       flexlevel load  [-url u] [-n requests] [-tenants f] [-workers w] [-readratio r] [-gate] [-json]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	// serve and load have their own flag surfaces; dispatch before the
	// shared experiment flag set.
	switch cmd {
	case "serve", "load":
		run := serveCmd
		if cmd == "load" {
			run = loadCmd
		}
		if err := run(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "flexlevel:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := fs.Int("n", 60000, "requests per workload for system experiments")
	seed := fs.Int64("seed", 1, "master seed: workload generation and per-shard derived seeds")
	pe := fs.Int("pe", 6000, "P/E cycle point for fig6a/fig7/ablations")
	parallel := fs.Int("parallel", 0, "experiment engine workers (0 = all cores); results are byte-identical for any value")
	faults := fs.Float64("faults", 1, "fault-rate multiplier for the reliability and lifetime sweeps (0 disables injection)")
	scale := fs.Float64("scale", 1, "device-scale multiplier for the lifetime sweep (1 = the full 1M+ physical-page device)")
	crashes := fs.Int("crashes", 24, "crash points for the crash subcommand")
	inFile := fs.String("in", "", "trace file for the replay subcommand")
	tenantsFile := fs.String("tenants", "", "tenant spec file for the scenario subcommand (default: built-in three-tenant mix)")
	format := fs.String("format", "csv", "trace file format: csv (tracegen) or msr (MSR-Cambridge)")
	csvDir := fs.String("csv", "", "also write plotting-friendly CSV artifacts into this directory")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(os.Args[2:]); err != nil {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := exp.SimConfig{Requests: *n, Seed: *seed, PE: *pe, Parallel: *parallel, Ctx: ctx}
	// Every engine sweep emits a machine-readable JSON summary (wall
	// time, speedup vs serial, ops/sec, per-shard timing) next to the
	// CSV artifacts when -csv is given.
	cfg.OnSummary = func(s *runner.Summary) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "flexlevel: summary:", err)
			return
		}
		f, err := os.Create(*csvDir + "/" + s.Name + "_summary.json")
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexlevel: summary:", err)
			return
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "flexlevel: summary:", err)
		}
	}

	writeCSV := func(name string, emit func(w *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(*csvDir + "/" + name)
		if err != nil {
			return err
		}
		defer f.Close()
		return emit(f)
	}

	run := func(name string) error {
		switch name {
		case "fig5":
			rows, err := exp.Fig5(cfg)
			if err != nil {
				return err
			}
			exp.PrintFig5(os.Stdout, rows)
			if err := writeCSV("fig5.csv", func(f *os.File) error { return exp.WriteFig5CSV(f, rows) }); err != nil {
				return err
			}
		case "table4":
			cells, err := exp.Table4(cfg)
			if err != nil {
				return err
			}
			exp.PrintTable4(os.Stdout, cells)
			if err := writeCSV("table4.csv", func(f *os.File) error { return exp.WriteTable4CSV(f, cells) }); err != nil {
				return err
			}
		case "table5":
			rows, err := exp.Table5(sensing.DefaultRule())
			if err != nil {
				return err
			}
			exp.PrintTable5(os.Stdout, rows)
			if err := writeCSV("table5.csv", func(f *os.File) error { return exp.WriteTable5CSV(f, rows) }); err != nil {
				return err
			}
		case "fig6a":
			data, err := exp.Fig6a(cfg)
			if err != nil {
				return err
			}
			exp.PrintFig6a(os.Stdout, data)
			if err := writeCSV("fig6a.csv", func(f *os.File) error { return exp.WriteFig6aCSV(f, data) }); err != nil {
				return err
			}
		case "fig6b":
			pts, err := exp.Fig6b(cfg, []int{4000, 5000, 6000})
			if err != nil {
				return err
			}
			exp.PrintFig6b(os.Stdout, pts)
		case "fig7":
			data, err := exp.Fig6a(cfg)
			if err != nil {
				return err
			}
			rows := exp.Fig7(data)
			exp.PrintFig7(os.Stdout, rows)
			if err := writeCSV("fig7.csv", func(f *os.File) error { return exp.WriteFig7CSV(f, rows) }); err != nil {
				return err
			}
		case "ablations":
			enc, err := exp.EncodingAblation(cfg)
			if err != nil {
				return err
			}
			exp.PrintEncodingAblation(os.Stdout, enc)
			fmt.Println()
			margins, err := exp.MarginAblation(cfg)
			if err != nil {
				return err
			}
			exp.PrintMarginAblation(os.Stdout, margins)
			fmt.Println()
			hlo, err := exp.HLOAblation(cfg)
			if err != nil {
				return err
			}
			exp.PrintHLOAblation(os.Stdout, hlo)
			fmt.Println()
			pool, err := exp.PoolSweep(cfg, []float64{0.001, 0.005, 0.02, 0.25})
			if err != nil {
				return err
			}
			exp.PrintPoolSweep(os.Stdout, pool)
			fmt.Println()
			rt, err := exp.RefTuneAblation(cfg, *pe, 720)
			if err != nil {
				return err
			}
			exp.PrintRefTune(os.Stdout, *pe, 720, rt)
			fmt.Println()
			scrub, err := exp.ScrubAblation(cfg)
			if err != nil {
				return err
			}
			exp.PrintScrubAblation(os.Stdout, scrub)
			fmt.Println()
			ch, err := exp.ChannelAblation(cfg, []int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			exp.PrintChannelAblation(os.Stdout, ch)
		case "ecc":
			rows, err := exp.HardECCStudy(cfg)
			if err != nil {
				return err
			}
			exp.PrintHardECC(os.Stdout, rows)
		case "retshare":
			rows, avg, err := exp.RetentionShares(cfg)
			if err != nil {
				return err
			}
			exp.PrintRetentionShares(os.Stdout, rows, avg)
		case "replay":
			return replay(*inFile, *format, *pe)
		case "reliability":
			scales := []float64{0}
			if m := *faults; m > 0 {
				scales = append(scales, 0.25*m, m, 4*m)
			}
			rows, err := exp.Reliability(cfg, scales)
			if err != nil {
				return err
			}
			exp.PrintReliability(os.Stdout, rows)
			if err := writeCSV("reliability.csv", func(f *os.File) error { return exp.WriteReliabilityCSV(f, rows) }); err != nil {
				return err
			}
		case "crash":
			data, err := exp.CrashRecovery(cfg, *crashes)
			if err != nil {
				return err
			}
			exp.PrintCrash(os.Stdout, data)
			if err := writeCSV("crash.csv", func(f *os.File) error { return exp.WriteCrashCSV(f, data.Rows) }); err != nil {
				return err
			}
			if err := writeCSV("crash_summary.json", func(f *os.File) error { return data.Summary.WriteJSON(f) }); err != nil {
				return err
			}
		case "throughput":
			rows, err := exp.Throughput(cfg)
			if err != nil {
				return err
			}
			exp.PrintThroughput(os.Stdout, rows)
			if err := writeCSV("throughput.csv", func(f *os.File) error { return exp.WriteThroughputCSV(f, rows) }); err != nil {
				return err
			}
		case "scenario":
			tenants, err := loadTenants(*tenantsFile)
			if err != nil {
				return err
			}
			rows, err := exp.Scenario(cfg, tenants)
			if err != nil {
				return err
			}
			exp.PrintScenario(os.Stdout, rows)
			if err := writeCSV("scenario.csv", func(f *os.File) error { return exp.WriteScenarioCSV(f, rows) }); err != nil {
				return err
			}
		case "lifetime":
			p := exp.DefaultLifetime()
			if *scale != 1 {
				p = p.Scaled(*scale)
			}
			p.FaultScale = *faults
			rows, err := exp.Lifetime(cfg, p)
			if err != nil {
				return err
			}
			exp.PrintLifetime(os.Stdout, rows)
			if err := writeCSV("lifetime.csv", func(f *os.File) error { return exp.WriteLifetimeCSV(f, rows) }); err != nil {
				return err
			}
		case "adaptive":
			rows, err := exp.Adaptive(cfg)
			if err != nil {
				return err
			}
			exp.PrintAdaptive(os.Stdout, rows)
			if err := writeCSV("adaptive.csv", func(f *os.File) error { return exp.WriteAdaptiveCSV(f, rows) }); err != nil {
				return err
			}
		default:
			usage()
		}
		return nil
	}

	var names []string
	if cmd == "all" {
		names = []string{"fig5", "table4", "table5", "fig6a", "fig6b", "fig7", "ablations", "ecc", "retshare", "reliability", "crash", "throughput", "adaptive", "scenario", "lifetime"}
	} else {
		switch cmd {
		case "fig5", "table4", "table5", "fig6a", "fig6b", "fig7", "ablations",
			"ecc", "retshare", "replay", "reliability", "crash", "throughput",
			"adaptive", "scenario", "lifetime":
		default:
			usage() // before any profile file is created
		}
		names = []string{cmd}
	}
	// Profiling brackets the experiment work itself; usage errors above
	// exit before any profile file is created. os.Exit skips defers, so
	// every exit path below stops the profiler explicitly.
	prof, err := startProfiles(*cpuProfile, *memProfile, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlevel:", err)
		os.Exit(1)
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "flexlevel:", err)
			prof.stop()
			os.Exit(1)
		}
	}
	prof.stop()
}

// loadTenants reads a scenario tenant spec file, or returns nil (the
// built-in default mix) when no file is given.
func loadTenants(path string) ([]trace.TenantSpec, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tenants, err := trace.ReadScenarioSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tenants, nil
}

// replay runs a trace file through all four systems and prints the
// Fig. 6(a)-style comparison.
func replay(path, format string, pe int) error {
	if path == "" {
		return fmt.Errorf("replay needs -in <file>")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var reqs []trace.Request
	switch format {
	case "csv":
		reqs, err = trace.ReadCSV(f)
	case "msr":
		cfg := trace.DefaultMSRConfig()
		cfg.WrapPages = core.DefaultOptions(core.Baseline, pe).SSD.FTL.LogicalPages / 2
		reqs, err = trace.ReadMSR(f, cfg)
	default:
		return fmt.Errorf("unknown trace format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d requests from %s (%s format) at P/E %d\n", len(reqs), path, format, pe)
	var metrics []core.Metrics
	var ref float64
	for _, sys := range core.Systems() {
		r, err := core.NewRunner(core.DefaultOptions(sys, pe))
		if err != nil {
			return err
		}
		m, err := r.RunRequests(path, reqs, 0)
		if err != nil {
			return err
		}
		if sys == core.LDPCInSSD {
			ref = m.AvgResponse
		}
		metrics = append(metrics, m)
	}
	for _, m := range metrics {
		norm := 0.0
		if ref > 0 {
			norm = m.AvgResponse / ref
		}
		fmt.Printf("  %-22s avg %9.1fµs (norm %5.2f) p99 read %9.1fµs\n",
			m.System, m.AvgResponse*1e6, norm, m.P99Read*1e6)
	}
	return nil
}
