// serve and load: the long-running block-service side of the binary.
//
//	flexlevel serve [-addr :8077] [-tenants f] [-qd 8] [-rate r] ...
//	flexlevel load  [-url http://...] [-n 100000] [-workers 8] ...
//
// serve exposes the simulated SSD as a multi-tenant HTTP read/write
// API (internal/server) and drains cleanly on SIGTERM/SIGINT: stop
// admitting, finish every in-flight op, flush the final metrics
// snapshot, then exit. load is the matching closed-loop generator with
// capped exponential backoff; with -gate it exits nonzero when the
// run's error budget is violated, which is how CI smokes the server.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexlevel/internal/core"
	"flexlevel/internal/exp"
	"flexlevel/internal/server"
	"flexlevel/internal/trace"
)

// serveOpts is the parsed form of `flexlevel serve`.
type serveOpts struct {
	addr         string
	cfg          server.Config
	drainTimeout time.Duration
	pprof        bool
}

func parseServe(args []string) (serveOpts, error) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8077", "listen address")
	system := fs.String("system", core.FlexLevel.String(), "simulated system: baseline|ldpc-in-ssd|leveladjust-only|flexlevel")
	pe := fs.Int("pe", 6000, "P/E cycle point of the simulated device")
	seed := fs.Int64("seed", 1, "master seed: device, faults, access evaluation")
	channels := fs.Int("channels", 0, "flash channels (0 = core default)")
	tenantsFile := fs.String("tenants", "", "tenant spec CSV (tracegen -tenants); default: built-in three-tenant mix")
	qd := fs.Int("qd", server.DefaultQueueDepth, "per-tenant outstanding queue-depth window")
	maxQueue := fs.Int("maxqueue", server.DefaultMaxQueue, "per-tenant admission queue bound (429 past it)")
	rate := fs.Float64("rate", 0, "per-tenant token-bucket rate in requests per simulated second (0 = unlimited)")
	burst := fs.Float64("burst", 0, "token-bucket burst (0 = one second of -rate)")
	slo := fs.Duration("slo", 0, "shed ops whose projected simulated queue wait exceeds this (0 = off)")
	deadline := fs.Duration("deadline", 0, "default per-request simulated deadline (0 = none)")
	simGap := fs.Duration("simgap", server.DefaultSimGap, "simulated interarrival gap charged per admitted op")
	faults := fs.Float64("faults", 0, "fault-rate multiplier over the reliability sweep's 1x curves (0 = off)")
	crashAt := fs.Int64("crash-at", 0, "script a power loss before the Nth admitted op (0 = never)")
	crashShard := fs.Int("crash-shard", 0, "shard whose engine -crash-at counts ops on")
	autoRestart := fs.Bool("auto-restart", false, "recover a crashed device in place and resume serving")
	shards := fs.Int("shards", 1, "independent engine shards partitioning the device (1 = legacy single-engine path)")
	pprof := fs.Bool("pprof", false, "mount /debug/pprof/* profiling endpoints on the service mux")
	snapshot := fs.String("snapshot", "", "write the final JSON metrics snapshot here on drain")
	drain := fs.Duration("drain-timeout", 30*time.Second, "bound on the shutdown drain")
	if err := fs.Parse(args); err != nil {
		return serveOpts{}, err
	}
	sys, err := core.ParseSystem(*system)
	if err != nil {
		return serveOpts{}, err
	}
	tenants, err := loadTenants(*tenantsFile)
	if err != nil {
		return serveOpts{}, err
	}
	cfg := server.Config{
		System:       sys,
		PE:           *pe,
		Channels:     *channels,
		Seed:         *seed,
		Tenants:      tenants,
		QueueDepth:   *qd,
		MaxQueue:     *maxQueue,
		Rate:         *rate,
		Burst:        *burst,
		SLOWait:      *slo,
		Deadline:     *deadline,
		SimGap:       *simGap,
		CrashAtOp:    *crashAt,
		CrashShard:   *crashShard,
		AutoRestart:  *autoRestart,
		SnapshotPath: *snapshot,
		Shards:       *shards,
	}
	if *faults > 0 {
		cfg.Faults = exp.DefaultFaultConfig(*seed).Scaled(*faults)
	}
	return serveOpts{addr: *addr, cfg: cfg, drainTimeout: *drain, pprof: *pprof}, nil
}

// runServe listens, serves until ctx is cancelled (SIGTERM/SIGINT in
// the CLI; the test harness cancels directly), then drains: the block
// service stops admitting and finishes in-flight ops before the HTTP
// listener closes, so every accepted request gets a real answer.
// ready, when non-nil, receives the bound listen address.
func runServe(ctx context.Context, o serveOpts, ready chan<- string) error {
	s, err := server.New(o.cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		// The engine goroutine is already running; drain it before
		// reporting the listen failure.
		dctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		s.Shutdown(dctx)
		return err
	}
	var handler http.Handler = s.Handler()
	if o.pprof {
		// Profiling is opt-in: the endpoints expose stack traces and
		// timing side channels, so they never ride along silently.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "flexlevel: serving %d tenants on %s (system %v, P/E %d)\n",
		len(s.Tenants()), ln.Addr(), o.cfg.System, o.cfg.PE)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		// Listener died on its own; still drain the engine.
		dctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		s.Shutdown(dctx)
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "flexlevel: draining (stop admitting, finish in-flight, flush snapshot)")
	dctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if snap, ok := s.FinalSnapshot(); ok {
		fmt.Fprintf(os.Stderr,
			"flexlevel: drained after %.1fs: %d admitted (%d reads, %d writes), %d shed, %d deadline, p99 %.0fµs\n",
			snap.UptimeSeconds, snap.Admitted, snap.Reads, snap.Writes,
			snap.Shed, snap.DeadlineExceeded, snap.P99*1e6)
		if snap.SnapshotError != "" {
			return fmt.Errorf("final snapshot: %s", snap.SnapshotError)
		}
	}
	return nil
}

func serveCmd(args []string) error {
	o, err := parseServe(args)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, o, nil)
}

// loadOpts is the parsed form of `flexlevel load`.
type loadOpts struct {
	cfg  server.LoadConfig
	gate bool
	// maxShedRate bounds Shed/Sent when gating (<0 = no bound).
	maxShedRate float64
	jsonOut     bool
}

func parseLoad(args []string) (loadOpts, error) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8077", "base URL of a running flexlevel serve")
	n := fs.Int("n", 100000, "total requests, split across tenants by spec weight")
	tenantsFile := fs.String("tenants", "", "tenant spec CSV; must match the server's (default: built-in mix)")
	system := fs.String("system", core.FlexLevel.String(), "server's -system (sizes the default tenant windows)")
	pe := fs.Int("pe", 6000, "server's -pe (sizes the default tenant windows)")
	workers := fs.Int("workers", 8, "closed-loop workers per tenant")
	readRatio := fs.Float64("readratio", 0.7, "read fraction of generated ops")
	maxPages := fs.Int("maxpages", 4, "pages per op, uniform in [1, maxpages]")
	seed := fs.Int64("seed", 1, "generator seed (worker seeds derive from it)")
	retries := fs.Int("retries", 16, "retry budget per op before it counts as failed")
	backoff := fs.Duration("backoff", time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
	backoffCap := fs.Duration("backoff-cap", 100*time.Millisecond, "retry backoff cap")
	gate := fs.Bool("gate", false, "exit nonzero unless the run holds the error budget (zero 5xx/bad/failed/duplicate-seq, dense acks, shed rate bound)")
	maxShed := fs.Float64("max-shed-rate", 0.5, "with -gate: highest tolerated shed fraction of round trips")
	jsonOut := fs.Bool("json", false, "print the full result as JSON instead of a summary")
	if err := fs.Parse(args); err != nil {
		return loadOpts{}, err
	}
	tenants, err := loadTenants(*tenantsFile)
	if err != nil {
		return loadOpts{}, err
	}
	if tenants == nil {
		// Mirror the serve default: the built-in mix over the selected
		// device's logical space, so windows line up without a spec file.
		sys, err := core.ParseSystem(*system)
		if err != nil {
			return loadOpts{}, err
		}
		tenants = trace.DefaultTenants(core.DefaultOptions(sys, *pe).SSD.FTL.LogicalPages)
	}
	var weight uint64
	for _, t := range tenants {
		weight += uint64(t.Weight)
	}
	if weight == 0 {
		return loadOpts{}, fmt.Errorf("tenant spec has zero total weight")
	}
	var lts []server.LoadTenant
	assigned := 0
	for i, t := range tenants {
		budget := *n * t.Weight / int(weight)
		if i == len(tenants)-1 {
			budget = *n - assigned // remainder to the last tenant
		}
		assigned += budget
		lts = append(lts, server.LoadTenant{Name: t.Name, Requests: budget, Window: t.WorkingSet})
	}
	return loadOpts{
		cfg: server.LoadConfig{
			BaseURL:     *url,
			Tenants:     lts,
			Workers:     *workers,
			ReadRatio:   *readRatio,
			MaxPages:    *maxPages,
			Seed:        *seed,
			BackoffBase: *backoff,
			BackoffCap:  *backoffCap,
			MaxRetries:  *retries,
		},
		gate:        *gate,
		maxShedRate: *maxShed,
		jsonOut:     *jsonOut,
	}, nil
}

// gateLoad checks a run against the CI error budget. Dense per-tenant
// ack sequences (max == count, no duplicates) are the client-visible
// proof of zero acknowledged-write loss.
func gateLoad(res server.LoadResult, maxShedRate float64) error {
	if res.Status5xx > 0 {
		return fmt.Errorf("gate: %d unexpected 5xx responses", res.Status5xx)
	}
	if res.BadStatus > 0 {
		return fmt.Errorf("gate: %d unexpected statuses", res.BadStatus)
	}
	if res.Failed > 0 {
		return fmt.Errorf("gate: %d ops exhausted their retry budget", res.Failed)
	}
	if res.SeqDuplicates > 0 {
		return fmt.Errorf("gate: %d duplicate ack sequences (acknowledged-write loss)", res.SeqDuplicates)
	}
	for name, max := range res.MaxSeq {
		if acks := res.WriteAcks[name]; max != uint64(acks) {
			return fmt.Errorf("gate: tenant %s ack sequences not dense (max %d, acked %d)", name, max, acks)
		}
	}
	if maxShedRate >= 0 && res.Sent > 0 {
		if rate := float64(res.Shed) / float64(res.Sent); rate > maxShedRate {
			return fmt.Errorf("gate: shed rate %.3f exceeds bound %.3f", rate, maxShedRate)
		}
	}
	return nil
}

func loadCmd(args []string) error {
	o, err := parseLoad(args)
	if err != nil {
		return err
	}
	res, err := server.Load(o.cfg)
	if err != nil {
		return err
	}
	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		total := res.OK + res.Failed + res.Deadline
		fmt.Printf("load: %d ops settled in %.1fs (%.0f ops/s wall): %d ok (%d reads, %d writes), %d deadline, %d failed\n",
			total, res.WallSeconds, float64(total)/res.WallSeconds,
			res.OK, res.ReadOK, res.WriteOK, res.Deadline, res.Failed)
		fmt.Printf("load: %d round trips, %d retries, %d shed (429), %d retryable 503, %d bad, %d 5xx\n",
			res.Sent, res.Retries, res.Shed, res.Retryable, res.BadStatus, res.Status5xx)
		for name, max := range res.MaxSeq {
			fmt.Printf("load: tenant %-12s acked %6d writes, max seq %6d, dense %v\n",
				name, res.WriteAcks[name], max, max == uint64(res.WriteAcks[name]))
		}
	}
	if o.gate {
		if err := gateLoad(res, o.maxShedRate); err != nil {
			return err
		}
		fmt.Println("load: gate passed")
	}
	return nil
}
