package main

// First-class profiling hooks (DESIGN.md §11): -cpuprofile, -memprofile
// and -trace wrap any subcommand, so the paper sweeps can be profiled
// exactly as they run in CI or on the command line — no special bench
// binary required.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// profiler owns the output files of the profiling flags. stop is
// idempotent and must run before every process exit (os.Exit skips
// defers), or the CPU profile and execution trace are truncated and the
// heap profile never written.
type profiler struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
}

// startProfiles begins CPU profiling and execution tracing as requested;
// the heap profile is deferred to stop so it captures the live heap at
// the end of the run. Empty paths disable the corresponding output.
func startProfiles(cpuPath, memPath, tracePath string) (*profiler, error) {
	p := &profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			p.stop()
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.stop()
			return nil, fmt.Errorf("trace: %w", err)
		}
		p.traceFile = f
	}
	return p, nil
}

// stop flushes and closes every active profile output.
func (p *profiler) stop() {
	if p == nil {
		return
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
	if p.traceFile != nil {
		trace.Stop()
		p.traceFile.Close()
		p.traceFile = nil
	}
	if p.memPath != "" {
		path := p.memPath
		p.memPath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexlevel: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "flexlevel: memprofile:", err)
		}
	}
}
