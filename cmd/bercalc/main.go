// Command bercalc evaluates the device-physics models directly: raw BER
// (C2C + retention) for any scheme, the Eq. 1 UBER, and the number of
// extra LDPC sensing levels a read would need.
//
//	bercalc -scheme baseline -pe 6000 -hours 720
//	bercalc -scheme "NUNMA 3" -pe 6000 -hours 720
//	bercalc -sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"flexlevel/internal/noise"
	"flexlevel/internal/nunma"
	"flexlevel/internal/reducecode"
	"flexlevel/internal/sensing"
	"flexlevel/internal/uber"
)

func modelFor(scheme string) (*noise.BERModel, error) {
	if scheme == "baseline" {
		return noise.NewBERModel(nunma.BaselineMLC(), noise.MLCGray())
	}
	if scheme == "basic" {
		return noise.NewBERModel(nunma.BasicLevelAdjust(), reducecode.Encoding())
	}
	cfg, err := nunma.ByName(scheme)
	if err != nil {
		return nil, err
	}
	return noise.NewBERModel(cfg.Spec(), reducecode.Encoding())
}

func main() {
	scheme := flag.String("scheme", "baseline", `scheme: baseline, basic, "NUNMA 1", "NUNMA 2", "NUNMA 3"`)
	pe := flag.Int("pe", 6000, "P/E cycle count")
	hours := flag.Float64("hours", 720, "retention time in hours")
	sweep := flag.Bool("sweep", false, "print a P/E x time sweep for the scheme")
	density := flag.Bool("density", false, "emit the scheme's Vth density as CSV (Fig. 4-style)")
	flag.Parse()

	m, err := modelFor(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bercalc:", err)
		os.Exit(1)
	}
	rule := sensing.DefaultRule()

	if *density {
		if err := noise.WriteDensityCSV(os.Stdout, m.Spec, m.Enc, 0.0, 4.5, 451); err != nil {
			fmt.Fprintln(os.Stderr, "bercalc:", err)
			os.Exit(1)
		}
		return
	}

	if *sweep {
		fmt.Printf("scheme %s: total raw BER (C2C %.3e) and required sensing levels\n", *scheme, m.C2CBER())
		fmt.Printf("%-8s %10s %10s %10s %10s\n", "P/E", "1 day", "2 days", "1 week", "1 month")
		for _, p := range []int{2000, 3000, 4000, 5000, 6000} {
			fmt.Printf("%-8d", p)
			for _, h := range []float64{24, 48, 168, 720} {
				ber := m.TotalBER(p, h)
				l, _ := rule.RequiredLevels(ber)
				fmt.Printf(" %.2e/%d", ber, l)
			}
			fmt.Println()
		}
		return
	}

	c2c := m.C2CBER()
	ret := m.RetentionBER(*pe, *hours)
	total := c2c + ret
	levels, ok := rule.RequiredLevels(total)
	code := uber.PaperCode()
	k, _ := uber.RequiredK(code, total, uber.TargetUBER)
	fmt.Printf("scheme:            %s\n", *scheme)
	fmt.Printf("P/E cycles:        %d\n", *pe)
	fmt.Printf("retention:         %.0f hours\n", *hours)
	fmt.Printf("C2C BER:           %.4e\n", c2c)
	fmt.Printf("retention BER:     %.4e\n", ret)
	fmt.Printf("total raw BER:     %.4e\n", total)
	fmt.Printf("correctable bits:  %d (rate-8/9 over 4KB, UBER <= 1e-15)\n", k)
	fmt.Printf("extra levels:      %d", levels)
	if !ok {
		fmt.Printf(" (insufficient: page needs refresh)")
	}
	fmt.Println()
	fmt.Printf("read latency:      %v (vs %v hard-decision)\n",
		sensing.DefaultTiming().ReadLatency(levels), sensing.DefaultTiming().ReadLatency(0))
}
