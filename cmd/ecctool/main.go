// Command ecctool sweeps the error-correction substrates over a binary
// symmetric channel: the IRA and quasi-cyclic LDPC constructions under
// both min-sum schedules, and the BCH comparator, reporting frame error
// rates with Wilson 95% confidence intervals.
//
//	ecctool -frames 100 -bers 0.002,0.004,0.008
//	ecctool -construction qc -frames 50
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"flexlevel/internal/bch"
	"flexlevel/internal/ldpc"
	"flexlevel/internal/stats"
)

func main() {
	frames := flag.Int("frames", 50, "codewords per point")
	bersFlag := flag.String("bers", "0.002,0.004,0.006,0.010", "comma-separated channel BERs")
	construction := flag.String("construction", "ira", "ldpc construction: ira or qc")
	seed := flag.Int64("seed", 1, "RNG seed")
	withBCH := flag.Bool("bch", true, "include the BCH(255,191) t=8 comparator")
	flag.Parse()

	var bers []float64
	for _, s := range strings.Split(*bersFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 || v >= 0.5 {
			fmt.Fprintf(os.Stderr, "ecctool: bad BER %q\n", s)
			os.Exit(1)
		}
		bers = append(bers, v)
	}

	var code *ldpc.Code
	var err error
	switch *construction {
	case "ira":
		code, err = ldpc.New(ldpc.TestParams())
	case "qc":
		code, err = ldpc.NewQC(ldpc.QCParams{J: 4, L: 36, Z: 37, Seed: 5})
	default:
		fmt.Fprintf(os.Stderr, "ecctool: unknown construction %q\n", *construction)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecctool:", err)
		os.Exit(1)
	}
	fmt.Printf("LDPC (%s): n=%d k=%d rate=%.3f, %d frames per point\n",
		*construction, code.N, code.K, code.Rate(), *frames)
	fmt.Printf("%-8s %26s %26s\n", "BER", "flooding FER [95% CI]", "layered FER [95% CI]")
	for _, p := range bers {
		flood, err := ldpc.SimulateFER(code, ldpc.NewDecoder(code), p, *frames, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecctool:", err)
			os.Exit(1)
		}
		layer, err := ldpc.SimulateFER(code, ldpc.NewLayeredDecoder(code), p, *frames, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecctool:", err)
			os.Exit(1)
		}
		fl, fh := stats.ProportionCI95(int64(flood.FrameFails), int64(flood.Frames))
		ll, lh := stats.ProportionCI95(int64(layer.FrameFails), int64(layer.Frames))
		fmt.Printf("%-8.4f %8.3f [%5.3f, %5.3f] %11.3f [%5.3f, %5.3f]   iters %.1f vs %.1f\n",
			p, flood.FER(), fl, fh, layer.FER(), ll, lh, flood.AvgIters, layer.AvgIters)
	}

	if !*withBCH {
		return
	}
	bchCode, err := bch.New(8, 8)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecctool:", err)
		os.Exit(1)
	}
	fmt.Printf("\nBCH (n=%d, k=%d, t=%d):\n", bchCode.N, bchCode.K, bchCode.T)
	fmt.Printf("%-8s %26s\n", "BER", "FER [95% CI]")
	rng := rand.New(rand.NewSource(*seed))
	for _, p := range bers {
		fails := 0
		for f := 0; f < *frames; f++ {
			data := make([]byte, bchCode.K)
			for i := range data {
				data[i] = byte(rng.Intn(2))
			}
			cw, err := bchCode.Encode(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecctool:", err)
				os.Exit(1)
			}
			for i := range cw {
				if rng.Float64() < p {
					cw[i] ^= 1
				}
			}
			res, err := bchCode.Decode(cw)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecctool:", err)
				os.Exit(1)
			}
			ok := res.OK
			for i := range data {
				if res.Data[i] != data[i] {
					ok = false
				}
			}
			if !ok {
				fails++
			}
		}
		lo, hi := stats.ProportionCI95(int64(fails), int64(*frames))
		fmt.Printf("%-8.4f %8.3f [%5.3f, %5.3f]\n", p, float64(fails)/float64(*frames), lo, hi)
	}
}
