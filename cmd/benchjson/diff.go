package main

// Diff mode: the benchmark-regression gate. Compares two benchjson
// documents benchmark-by-benchmark and exits non-zero when a gated
// metric regressed past the tolerance.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// allocSlack absorbs the integer jitter of tiny allocs/op counts: a
// baseline of 0 allocs/op would otherwise make any nonzero value an
// infinite regression.
const allocSlack = 0.5

// DiffRow is the comparison of one benchmark across the two reports.
type DiffRow struct {
	Key       string // package + " " + name
	OldNs     float64
	NewNs     float64
	OldAllocs float64
	NewAllocs float64
	Regressed bool
	Reason    string
	OnlyInOld bool
	OnlyInNew bool
}

// diffReports compares old and new, gating ns/op and allocs/op at tol
// (fractional, e.g. 0.15 = +15%). filter, when non-nil, restricts which
// benchmarks are gated (others are skipped entirely).
func diffReports(old, new *Report, tol float64, filter *regexp.Regexp) []DiffRow {
	type key struct{ pkg, name string }
	index := func(r *Report) map[key]Benchmark {
		m := make(map[key]Benchmark, len(r.Benchmarks))
		for _, b := range r.Benchmarks {
			m[key{b.Package, b.Name}] = b
		}
		return m
	}
	oldIdx, newIdx := index(old), index(new)
	keys := make([]key, 0, len(oldIdx)+len(newIdx))
	seen := make(map[key]bool)
	for k := range oldIdx {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range newIdx {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkg != keys[j].pkg {
			return keys[i].pkg < keys[j].pkg
		}
		return keys[i].name < keys[j].name
	})

	var rows []DiffRow
	for _, k := range keys {
		if filter != nil && !filter.MatchString(k.name) {
			continue
		}
		row := DiffRow{Key: k.pkg + " " + k.name}
		ob, inOld := oldIdx[k]
		nb, inNew := newIdx[k]
		switch {
		case !inNew:
			row.OnlyInOld = true
		case !inOld:
			row.OnlyInNew = true
		default:
			row.OldNs, row.NewNs = ob.NsPerOp, nb.NsPerOp
			row.OldAllocs, row.NewAllocs = ob.AllocsPerOp, nb.AllocsPerOp
			if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+tol) {
				row.Regressed = true
				row.Reason = fmt.Sprintf("ns/op %+.1f%%", 100*(nb.NsPerOp/ob.NsPerOp-1))
			}
			if nb.AllocsPerOp > ob.AllocsPerOp*(1+tol)+allocSlack {
				row.Regressed = true
				if row.Reason != "" {
					row.Reason += ", "
				}
				row.Reason += fmt.Sprintf("allocs/op %.1f -> %.1f", ob.AllocsPerOp, nb.AllocsPerOp)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// printDiff renders the comparison table; returns the regression count.
func printDiff(w io.Writer, rows []DiffRow, tol float64) int {
	regressions := 0
	fmt.Fprintf(w, "benchmark regression gate (tolerance %+.0f%%)\n", 100*tol)
	for _, r := range rows {
		switch {
		case r.OnlyInOld:
			fmt.Fprintf(w, "  MISSING  %s (in baseline only)\n", r.Key)
		case r.OnlyInNew:
			// A benchmark with no baseline entry is an addition, not a
			// regression: report it and let the run pass, so landing new
			// benchmarks never requires refreshing the baseline first.
			fmt.Fprintf(w, "  ADDED    %s (no baseline)\n", r.Key)
		case r.Regressed:
			regressions++
			fmt.Fprintf(w, "  FAIL     %s: %s\n", r.Key, r.Reason)
		default:
			delta := 0.0
			if r.OldNs > 0 {
				delta = 100 * (r.NewNs/r.OldNs - 1)
			}
			fmt.Fprintf(w, "  ok       %s: ns/op %+.1f%% (%.0f -> %.0f), allocs/op %.0f -> %.0f\n",
				r.Key, delta, r.OldNs, r.NewNs, r.OldAllocs, r.NewAllocs)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "  %d regression(s) past tolerance\n", regressions)
	} else {
		fmt.Fprintln(w, "  no regressions")
	}
	return regressions
}

// loadReport reads one benchjson document.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// diffMain parses `-diff old.json new.json [-tol f] [-bench regex]` and
// returns the process exit code.
func diffMain(args []string) int {
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -diff old.json new.json [-tol 0.15] [-bench regex]")
		return 2
	}
	oldPath, newPath := args[0], args[1]
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	tol := fs.Float64("tol", 0.15, "fractional regression tolerance (0.15 = +15%)")
	bench := fs.String("bench", "", "regexp restricting which benchmarks are gated")
	if err := fs.Parse(args[2:]); err != nil {
		return 2
	}
	var filter *regexp.Regexp
	if *bench != "" {
		re, err := regexp.Compile(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -bench:", err)
			return 2
		}
		filter = re
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	rows := diffReports(oldRep, newRep, *tol, filter)
	if printDiff(os.Stdout, rows, *tol) > 0 {
		return 1
	}
	return 0
}
