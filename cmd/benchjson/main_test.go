package main

import "testing"

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkFig6aResponseTime-8   \t       2\t 531202724 ns/op\t        41.25 %reduction\t 1234 B/op\t      56 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkFig6aResponseTime" || b.Procs != 8 || b.Runs != 2 {
		t.Errorf("name/procs/runs = %q/%d/%d", b.Name, b.Procs, b.Runs)
	}
	if b.NsPerOp != 531202724 || b.BytesPerOp != 1234 || b.AllocsPerOp != 56 {
		t.Errorf("standard metrics = %v/%v/%v", b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	if b.Metrics["%reduction"] != 41.25 {
		t.Errorf("custom metric = %v", b.Metrics)
	}
}

func TestParseBenchNoProcsSuffix(t *testing.T) {
	b, ok := parseBench("BenchmarkX 10 5 ns/op")
	if !ok || b.Name != "BenchmarkX" || b.Procs != 0 || b.NsPerOp != 5 {
		t.Errorf("got %+v ok=%v", b, ok)
	}
}

func TestParseBenchRejectsGarbage(t *testing.T) {
	for _, line := range []string{"Benchmark", "BenchmarkX abc 5 ns/op"} {
		if _, ok := parseBench(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
