// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive one BENCH_<date>.json
// artifact per run and benchmark trajectories can be tracked across
// commits without parsing free-form text.
//
//	go test -run '^$' -bench . ./... | benchjson > BENCH_2026-08-06.json
//
// Standard metrics (ns/op, B/op, allocs/op, MB/s) get their own fields;
// anything else — such as the custom %reduction metrics the figure
// benches report — lands in the metrics map keyed by its unit.
//
// Diff mode compares two such documents and fails on regressions — the
// CI benchmark-regression gate:
//
//	benchjson -diff BENCH_old.json BENCH_new.json -tol 0.15 [-bench regex]
//
// Benchmarks are matched by (package, name); ns/op and allocs/op are
// gated at the tolerance (default 15%). Exit status 1 means at least
// one regression; benchmarks present on only one side are reported but
// never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one result line of the -bench output.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Procs       int                `json:"procs,omitempty"` // the -N suffix (GOMAXPROCS)
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full document.
type Report struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-diff" {
		os.Exit(diffMain(os.Args[2:]))
	}
	report := Report{Date: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Package = pkg
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench decodes one "BenchmarkName-8  100  12345 ns/op  ..." line:
// a name, an iteration count, then (value, unit) pairs.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerSec = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
