package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func mkReport(benches ...Benchmark) *Report {
	return &Report{Benchmarks: benches}
}

func findRow(t *testing.T, rows []DiffRow, key string) DiffRow {
	t.Helper()
	for _, r := range rows {
		if r.Key == key {
			return r
		}
	}
	t.Fatalf("row %q not found in %+v", key, rows)
	return DiffRow{}
}

func TestDiffGatesNsPerOp(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 100})
	cur := mkReport(Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 120})
	rows := diffReports(old, cur, 0.15, nil)
	if r := findRow(t, rows, "p BenchmarkA"); !r.Regressed {
		t.Errorf("+20%% ns/op at 15%% tolerance should fail: %+v", r)
	}
	rows = diffReports(old, cur, 0.25, nil)
	if r := findRow(t, rows, "p BenchmarkA"); r.Regressed {
		t.Errorf("+20%% ns/op at 25%% tolerance should pass: %+v", r)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 40})
	cur := mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 50, AllocsPerOp: 2})
	for _, r := range diffReports(old, cur, 0.15, nil) {
		if r.Regressed {
			t.Errorf("improvement flagged as regression: %+v", r)
		}
	}
}

func TestDiffGatesAllocs(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 10})
	cur := mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 20})
	if r := findRow(t, diffReports(old, cur, 0.15, nil), " BenchmarkA"); !r.Regressed {
		t.Errorf("doubled allocs should fail: %+v", r)
	}
	// Zero-alloc baseline: one stray alloc sits inside the absolute
	// slack, not an infinite relative regression.
	old = mkReport(Benchmark{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 0})
	cur = mkReport(Benchmark{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 0.4})
	if r := findRow(t, diffReports(old, cur, 0.15, nil), " BenchmarkZ"); r.Regressed {
		t.Errorf("sub-slack alloc jitter should pass: %+v", r)
	}
}

func TestDiffMissingAndNew(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkGone", NsPerOp: 1})
	cur := mkReport(Benchmark{Name: "BenchmarkFresh", NsPerOp: 1})
	rows := diffReports(old, cur, 0.15, nil)
	if r := findRow(t, rows, " BenchmarkGone"); !r.OnlyInOld || r.Regressed {
		t.Errorf("gone bench: %+v", r)
	}
	if r := findRow(t, rows, " BenchmarkFresh"); !r.OnlyInNew || r.Regressed {
		t.Errorf("fresh bench: %+v", r)
	}
	var sb strings.Builder
	if n := printDiff(&sb, rows, 0.15); n != 0 {
		t.Errorf("missing/new rows should not count as regressions, got %d\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "ADDED") || !strings.Contains(sb.String(), "MISSING") {
		t.Errorf("diff output should label added and missing rows:\n%s", sb.String())
	}
}

// TestDiffMainAddedBenchmark drives the real entry point end to end:
// a new run that contains benchmarks absent from the baseline must
// exit 0 (added, not regressed), while a genuine regression on a
// shared benchmark must still exit 1.
func TestDiffMainAddedBenchmark(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r *Report) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", mkReport(
		Benchmark{Name: "BenchmarkShared", Package: "p", NsPerOp: 100},
	))
	newPath := write("new.json", mkReport(
		Benchmark{Name: "BenchmarkShared", Package: "p", NsPerOp: 100},
		Benchmark{Name: "BenchmarkBrandNew", Package: "p", NsPerOp: 9999},
	))
	if code := diffMain([]string{oldPath, newPath}); code != 0 {
		t.Errorf("added benchmark should not fail the gate, exit %d", code)
	}
	badPath := write("bad.json", mkReport(
		Benchmark{Name: "BenchmarkShared", Package: "p", NsPerOp: 200},
		Benchmark{Name: "BenchmarkBrandNew", Package: "p", NsPerOp: 9999},
	))
	if code := diffMain([]string{oldPath, badPath}); code != 1 {
		t.Errorf("regressed shared benchmark should exit 1, got %d", code)
	}
}

func TestDiffBenchFilter(t *testing.T) {
	old := mkReport(
		Benchmark{Name: "BenchmarkHot", NsPerOp: 100},
		Benchmark{Name: "BenchmarkCold", NsPerOp: 100},
	)
	cur := mkReport(
		Benchmark{Name: "BenchmarkHot", NsPerOp: 100},
		Benchmark{Name: "BenchmarkCold", NsPerOp: 1000},
	)
	rows := diffReports(old, cur, 0.15, regexp.MustCompile("Hot"))
	if len(rows) != 1 || rows[0].Key != " BenchmarkHot" || rows[0].Regressed {
		t.Errorf("filter should gate only BenchmarkHot: %+v", rows)
	}
}
