package main

import (
	"regexp"
	"strings"
	"testing"
)

func mkReport(benches ...Benchmark) *Report {
	return &Report{Benchmarks: benches}
}

func findRow(t *testing.T, rows []DiffRow, key string) DiffRow {
	t.Helper()
	for _, r := range rows {
		if r.Key == key {
			return r
		}
	}
	t.Fatalf("row %q not found in %+v", key, rows)
	return DiffRow{}
}

func TestDiffGatesNsPerOp(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 100})
	cur := mkReport(Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 120})
	rows := diffReports(old, cur, 0.15, nil)
	if r := findRow(t, rows, "p BenchmarkA"); !r.Regressed {
		t.Errorf("+20%% ns/op at 15%% tolerance should fail: %+v", r)
	}
	rows = diffReports(old, cur, 0.25, nil)
	if r := findRow(t, rows, "p BenchmarkA"); r.Regressed {
		t.Errorf("+20%% ns/op at 25%% tolerance should pass: %+v", r)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 40})
	cur := mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 50, AllocsPerOp: 2})
	for _, r := range diffReports(old, cur, 0.15, nil) {
		if r.Regressed {
			t.Errorf("improvement flagged as regression: %+v", r)
		}
	}
}

func TestDiffGatesAllocs(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 10})
	cur := mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 20})
	if r := findRow(t, diffReports(old, cur, 0.15, nil), " BenchmarkA"); !r.Regressed {
		t.Errorf("doubled allocs should fail: %+v", r)
	}
	// Zero-alloc baseline: one stray alloc sits inside the absolute
	// slack, not an infinite relative regression.
	old = mkReport(Benchmark{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 0})
	cur = mkReport(Benchmark{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 0.4})
	if r := findRow(t, diffReports(old, cur, 0.15, nil), " BenchmarkZ"); r.Regressed {
		t.Errorf("sub-slack alloc jitter should pass: %+v", r)
	}
}

func TestDiffMissingAndNew(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkGone", NsPerOp: 1})
	cur := mkReport(Benchmark{Name: "BenchmarkFresh", NsPerOp: 1})
	rows := diffReports(old, cur, 0.15, nil)
	if r := findRow(t, rows, " BenchmarkGone"); !r.OnlyInOld || r.Regressed {
		t.Errorf("gone bench: %+v", r)
	}
	if r := findRow(t, rows, " BenchmarkFresh"); !r.OnlyInNew || r.Regressed {
		t.Errorf("fresh bench: %+v", r)
	}
	var sb strings.Builder
	if n := printDiff(&sb, rows, 0.15); n != 0 {
		t.Errorf("missing/new rows should not count as regressions, got %d\n%s", n, sb.String())
	}
}

func TestDiffBenchFilter(t *testing.T) {
	old := mkReport(
		Benchmark{Name: "BenchmarkHot", NsPerOp: 100},
		Benchmark{Name: "BenchmarkCold", NsPerOp: 100},
	)
	cur := mkReport(
		Benchmark{Name: "BenchmarkHot", NsPerOp: 100},
		Benchmark{Name: "BenchmarkCold", NsPerOp: 1000},
	)
	rows := diffReports(old, cur, 0.15, regexp.MustCompile("Hot"))
	if len(rows) != 1 || rows[0].Key != " BenchmarkHot" || rows[0].Regressed {
		t.Errorf("filter should gate only BenchmarkHot: %+v", rows)
	}
}
