// Command tracegen emits the synthetic workload traces of the FlexLevel
// evaluation as CSV (arrival_us,op,lpn,pages), for inspection or for
// feeding external simulators.
//
//	tracegen -w fin-2 -n 100000 > fin2.csv
//	tracegen -list
//
// With -tenants N it instead emits a scenario-spec CSV of N tenants
// (the canonical trio first, then derived variants), the format
// `flexlevel scenario -spec` and `flexlevel serve -tenants` consume —
// one shared tenant vocabulary across the tools.
//
//	tracegen -tenants 3 > tenants.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"flexlevel/internal/trace"
)

func main() {
	name := flag.String("w", "fin-2", "workload name")
	n := flag.Int("n", 100000, "number of requests")
	ws := flag.Uint64("pages", 65536, "logical page count the working sets scale against")
	seed := flag.Int64("seed", 1, "generator seed")
	list := flag.Bool("list", false, "list available workloads and exit")
	summary := flag.Bool("summary", false, "print workload statistics instead of the trace")
	tenants := flag.Int("tenants", 0, "emit a scenario-spec CSV of this many tenants instead of a trace")
	flag.Parse()

	if *tenants > 0 {
		specs := trace.SampleTenants(*tenants, *ws)
		for _, t := range specs {
			if err := t.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
		}
		if err := trace.WriteScenarioSpec(os.Stdout, specs); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, w := range trace.Workloads(*n, *ws, *seed) {
			fmt.Printf("%-8s %-18s reads=%.0f%% zipf=%.2f workingset=%d pages\n",
				w.Name, w.Class, w.ReadRatio*100, w.ZipfS, w.WorkingSet)
		}
		return
	}

	w, err := trace.ByName(*name, *n, *ws, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	reqs, err := w.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *summary {
		s := trace.Summarize(reqs)
		fmt.Printf("workload:   %s (%s)\n", w.Name, w.Class)
		fmt.Printf("requests:   %d (%d reads, %d writes)\n", s.Requests, s.Reads, s.Writes)
		fmt.Printf("pages:      %d read, %d written\n", s.ReadPages, s.WritePages)
		fmt.Printf("span:       %v\n", s.Span)
		return
	}
	if err := trace.WriteCSV(os.Stdout, reqs); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
