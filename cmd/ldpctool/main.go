// Command ldpctool exercises the LDPC substrate: it encodes random data,
// pushes it through a binary-symmetric channel at a chosen raw BER, and
// decodes with both the soft min-sum and the hard bit-flipping decoder,
// reporting frame success rates and iteration counts.
//
//	ldpctool -ber 0.004 -frames 50
//	ldpctool -k 32768 -m 4096 -ber 0.002 -frames 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"flexlevel/internal/ldpc"
)

func main() {
	k := flag.Int("k", 4096, "information bits per codeword")
	m := flag.Int("m", 512, "parity bits per codeword")
	ber := flag.Float64("ber", 0.004, "channel raw bit error rate")
	frames := flag.Int("frames", 20, "codewords to simulate")
	seed := flag.Int64("seed", 1, "RNG seed")
	iters := flag.Int("iters", 30, "max BP iterations")
	flag.Parse()

	code, err := ldpc.New(ldpc.Params{InfoBits: *k, ParityBits: *m, ColWeight: 4, Seed: 20150607})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldpctool:", err)
		os.Exit(1)
	}
	fmt.Printf("code: k=%d m=%d n=%d rate=%.3f edges=%d\n",
		code.K, code.M, code.N, code.Rate(), code.Edges())

	rng := rand.New(rand.NewSource(*seed))
	soft := ldpc.NewDecoder(code)
	soft.MaxIter = *iters
	hard := ldpc.NewHardDecoder(code)

	softOK, hardOK, totalIters, totalFlips := 0, 0, 0, 0
	for f := 0; f < *frames; f++ {
		data := make([]byte, code.K)
		for i := range data {
			data[i] = byte(rng.Intn(2))
		}
		cw, err := code.Encode(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldpctool:", err)
			os.Exit(1)
		}
		noisy := make([]byte, len(cw))
		copy(noisy, cw)
		flips := 0
		for i := range noisy {
			if rng.Float64() < *ber {
				noisy[i] ^= 1
				flips++
			}
		}
		totalFlips += flips
		res, err := soft.Decode(ldpc.HardToLLR(noisy, ldpc.BSCLLR(*ber)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldpctool:", err)
			os.Exit(1)
		}
		if res.OK && equal(res.Data, data) {
			softOK++
			totalIters += res.Iterations
		}
		hres, err := hard.Decode(noisy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldpctool:", err)
			os.Exit(1)
		}
		if hres.OK && equal(hres.Data, data) {
			hardOK++
		}
	}
	fmt.Printf("channel: BER %.4g, mean %.1f flips/frame\n", *ber, float64(totalFlips)/float64(*frames))
	fmt.Printf("soft min-sum:   %d/%d frames decoded", softOK, *frames)
	if softOK > 0 {
		fmt.Printf(" (%.1f iters avg)", float64(totalIters)/float64(softOK))
	}
	fmt.Println()
	fmt.Printf("hard bit-flip:  %d/%d frames decoded\n", hardOK, *frames)
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
